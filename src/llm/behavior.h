// Generation behaviour model: what the simulated LLM says.
//
// The paper measures response quality as token F1 between the generation and
// the ground truth. Here a generation is synthesized from mechanisms, so F1 is
// a *measured* output of the pipeline rather than a hard-coded number:
//
//   - A context is a bag of facts at positions, each with a retrieval-salience
//     score. The model recovers each relevant fact with probability shaped by
//     the model's quality envelope, the fact's salience, and a
//     lost-in-the-middle penalty that grows with context length (Liu et al.,
//     cited by the paper as the reason more chunks eventually hurt).
//   - Joint-reasoning queries additionally need a reasoning step to succeed
//     before the "conclusion" tokens of the gold answer are produced.
//   - Distractor facts occasionally intrude into the answer (precision loss),
//     more often in long noisy contexts.
//   - Summarization (the map stage of map_reduce) keeps each fact with a
//     probability that rises with the intermediate-length budget and falls
//     with how much material competes for that budget, and strips most noise —
//     which is exactly why map_reduce helps complex queries in Fig. 4.
//
// Everything is deterministic given (seed, task salt).

#ifndef METIS_SRC_LLM_BEHAVIOR_H_
#define METIS_SRC_LLM_BEHAVIOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/llm/model_spec.h"

namespace metis {

enum class GenerationMode {
  kAnswer,     // Produce the final answer from facts in context.
  kSummarize,  // Query-focused summary of a single chunk (map stage).
};

// A fact as it appears inside an LLM call's context window.
struct FactInContext {
  int32_t fact_id = -1;
  std::vector<std::string> answer_tokens;  // Gold tokens this fact contributes.
  double position_frac = 0;                // 0 = context start, 1 = end.
  double salience = 0.5;                   // Retrieval/query-match strength.
  bool relevant = true;                    // False: distractor material.
  bool from_summary = false;               // Arrived via a clean map summary.
};

struct GenerationTask {
  GenerationMode mode = GenerationMode::kAnswer;
  std::vector<FactInContext> facts;
  int context_tokens = 0;

  // Query semantics (kAnswer).
  bool require_joint = false;
  bool high_complexity = false;
  int num_required_facts = 1;
  std::vector<std::string> conclusion_tokens;  // Emitted on reasoning success.
  int target_output_tokens = 16;

  // kSummarize only.
  int summary_budget_tokens = 0;

  // Per-call determinism: same salt => same outcome.
  uint64_t rng_salt = 0;
};

struct GenerationResult {
  std::string text;
  int output_tokens = 0;
  // Self-reported answer confidence; map_rerank ranks candidates with this.
  double confidence = 0;
  bool reasoning_success = false;
  // Facts expressed in the output (relevant ones only), with their tokens —
  // lets map_reduce thread recovered facts from summaries into the reducer.
  std::vector<FactInContext> expressed_facts;
};

// Tunable mechanism constants (defaults reproduce the paper's shapes).
struct BehaviorParams {
  // Lost-in-the-middle: penalty ramps up between onset and onset+range tokens
  // of context, scaled by how "mid-context" the fact sits.
  double litm_onset_tokens = 4000;
  double litm_range_tokens = 12000;
  double litm_strength = 0.72;
  // Distractor intrusion probability (base, and extra at full LITM ramp).
  double intrusion_base = 0.09;
  double intrusion_noise_scale = 0.16;
  // Distractor material that survived a map summary reads as a confident,
  // salient statement: it intrudes into answers with high probability. This
  // is the price wide static map_reduce configurations pay on narrow queries.
  double summary_noise_intrusion = 0.5;
  // Summarization: tokens of budget each fact needs to reliably survive.
  double summary_tokens_per_fact = 14;
  // Salience mixing: recovery ~ base * (floor + (1-floor)*salience).
  double salience_floor = 0.58;
  // Reasoning penalty at full LITM ramp.
  double reasoning_noise_penalty = 0.28;
  // High-complexity reasoning also suffers from off-query material in the
  // context regardless of length (map_reduce's denoising advantage, Fig. 4a).
  double complex_noise_penalty = 0.35;
};

class BehaviorModel {
 public:
  BehaviorModel(BehaviorParams params, uint64_t seed);

  // Deterministic for a given (model.name, task.rng_salt).
  GenerationResult Generate(const ModelSpec& model, const GenerationTask& task) const;

  // Exposed for tests/benches: the lost-in-the-middle recovery multiplier for
  // a fact at `position_frac` inside a context of `context_tokens` tokens.
  double LitmMultiplier(double position_frac, int context_tokens) const;

  const BehaviorParams& params() const { return params_; }

 private:
  BehaviorParams params_;
  uint64_t seed_;
};

}  // namespace metis

#endif  // METIS_SRC_LLM_BEHAVIOR_H_
