#include "src/llm/model_spec.h"

#include <cstdlib>

#include "src/common/check.h"

namespace metis {

double KvBytesPerToken(int layers, int kv_heads, int head_dim) {
  // Key + value, fp16.
  return 2.0 * layers * kv_heads * head_dim * 2.0;
}

ModelSpec Mistral7BAwq() {
  ModelSpec m;
  m.name = "mistral-7b-v3-awq";
  m.weight_bytes = 4.2 * kGiB;
  // 32 layers, 8 KV heads (GQA), 128 head dim -> 128 KiB/token.
  m.kv_bytes_per_token = KvBytesPerToken(32, 8, 128);
  m.prefill_tokens_per_sec = 64000;
  m.step_overhead_sec = 0.011;          // ~90 decode tokens/s/seq unbatched.
  m.attn_prefill_coeff = 6e-10;         // 20k-token prompt adds ~0.12 s.
  m.attn_decode_coeff = 6e-8;
  m.max_context_tokens = 32768;
  m.fact_recovery = 0.80;
  m.reasoning_factor = 0.88;
  m.api_model = false;
  m.usd_per_gpu_sec = 0.0005;           // ~ $1.8/hr A40 on-demand incl. host.
  m.num_gpus = 1;
  return m;
}

ModelSpec Llama70BAwq() {
  ModelSpec m;
  m.name = "llama3.1-70b-awq";
  m.weight_bytes = 37.0 * kGiB;
  // 80 layers, 8 KV heads, 128 head dim -> 320 KiB/token.
  m.kv_bytes_per_token = KvBytesPerToken(80, 8, 128);
  m.prefill_tokens_per_sec = 13000;
  m.step_overhead_sec = 0.045;          // ~22 decode tokens/s/seq unbatched.
  m.attn_prefill_coeff = 4e-9;
  m.attn_decode_coeff = 2.2e-7;
  m.max_context_tokens = 131072;
  m.fact_recovery = 0.83;              // RAG answers from context, not
  m.reasoning_factor = 0.93;            // weights: only ~2% F1 headroom (§7.4).
  m.api_model = false;
  m.usd_per_gpu_sec = 0.0005;
  m.num_gpus = 2;
  return m;
}

ModelSpec Gpt4oApi() {
  ModelSpec m;
  m.name = "gpt-4o";
  m.api_model = true;
  m.fact_recovery = 0.87;
  m.reasoning_factor = 0.96;
  m.max_context_tokens = 128000;
  m.usd_per_1m_input_tokens = 2.50;
  m.usd_per_1m_output_tokens = 10.00;
  m.api_rtt_sec = 0.045;
  m.api_prefill_tokens_per_sec = 12000;
  m.api_decode_tokens_per_sec = 250;
  return m;
}

ModelSpec Llama70BApi() {
  ModelSpec m;
  m.name = "llama3.1-70b-api";
  m.api_model = true;
  m.fact_recovery = 0.82;
  m.reasoning_factor = 0.92;
  m.max_context_tokens = 128000;
  m.usd_per_1m_input_tokens = 0.90;     // Hosted open-weights pricing.
  m.usd_per_1m_output_tokens = 0.90;
  m.api_rtt_sec = 0.07;
  m.api_prefill_tokens_per_sec = 9000;
  m.api_decode_tokens_per_sec = 160;
  return m;
}

ModelSpec Gpt4oServing() {
  // GPT-4o used as the *inference* model behind a fixed-config pipeline
  // (Fig. 13's most expensive comparison). Engine-rate fields describe the
  // provider's serving fleet; cost is per token, as with any API model.
  ModelSpec m = Gpt4oApi();
  m.name = "gpt-4o-serving";
  m.weight_bytes = 0;
  m.kv_bytes_per_token = KvBytesPerToken(48, 8, 128);
  m.prefill_tokens_per_sec = 120000;
  m.step_overhead_sec = 0.012;
  m.attn_prefill_coeff = 3e-10;
  m.attn_decode_coeff = 1e-7;
  m.num_gpus = 0;
  return m;
}

const std::vector<ModelSpec>& ModelCatalog() {
  static const std::vector<ModelSpec> kCatalog = {Mistral7BAwq(), Llama70BAwq(), Gpt4oApi(),
                                                  Llama70BApi(), Gpt4oServing()};
  return kCatalog;
}

const ModelSpec& GetModelSpec(std::string_view name) {
  for (const ModelSpec& m : ModelCatalog()) {
    if (m.name == name) {
      return m;
    }
  }
  METIS_CHECK(false && "unknown model");
  std::abort();
}

}  // namespace metis
