// Continuous-batching LLM serving engine (vLLM-equivalent substrate).
//
// Discrete-event model of an iteration-level scheduler:
//   - Requests wait in an arrival queue; admission is FCFS (head-of-line, as
//     in vLLM) or group-aware (Parrot*-style: siblings of an admitted request
//     may jump the line to exploit a resident shared prefix).
//   - Admission reserves the request's full KV footprint (prompt + output,
//     with the 2% OOM buffer of paper §4.3) in the paged KV-cache manager, so
//     decode never preempts.
//   - Each engine step packs up to max_batched_tokens: one decode token per
//     running sequence plus chunked-prefill segments for the rest of the
//     budget. Step latency = weight-read overhead + linear compute +
//     quadratic attention terms, which is what makes one 20-chunk `stuff`
//     prompt slower and hungrier than twenty 1-chunk mappers.
//
// The engine knows nothing about RAG or text: it times and accounts for
// (prompt_tokens, output_tokens) pairs. Synthesis layers precompute the
// generation outcome via BehaviorModel and carry it through the callback.

#ifndef METIS_SRC_LLM_ENGINE_H_
#define METIS_SRC_LLM_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/llm/kv_cache.h"
#include "src/llm/model_spec.h"
#include "src/sim/simulator.h"

namespace metis {

enum class AdmissionPolicy {
  kFcfs,        // vLLM default: strict arrival order, head-of-line blocking.
  kGroupAware,  // Parrot*/METIS: prefer same-prefix-group siblings when the
                // head does not fit, to harvest resident shared prefixes.
};

struct EngineConfig {
  ModelSpec model;
  double kv_pool_bytes = 0;       // KV budget (GPU memory after weights).
  int block_tokens = 16;          // PagedAttention block size.
  int max_batched_tokens = 2048;  // Chunked-prefill token budget per step.
  int max_running = 128;          // Max concurrent sequences.
  bool prefix_sharing = false;    // Share instruction prefixes across a group.
  double admit_buffer_frac = 0.02;  // OOM safety margin (paper §4.3).
  AdmissionPolicy policy = AdmissionPolicy::kFcfs;
  // Cross-query KV reuse: hold a prefix group's blocks resident (reclaimable,
  // LRU-evicted under pressure) for this long after the last reference drops,
  // instead of freeing eagerly — queries that retrieved the same chunks within
  // the window revive the prefix and skip the shared prefill. 0 (default) =
  // eager release, bit-identical to the pre-retention engine.
  double prefix_retention_s = 0;
  // Adaptive retention window: scale the grace period to the workload instead
  // of the fixed prefix_retention_s. The engine keeps an EWMA of HOT-prefix
  // inter-arrival times (consecutive submits naming an already-seen prefix
  // group) and retains for adaptive_retention_mult x that EWMA, clamped to
  // [adaptive_retention_min_s, adaptive_retention_max_s]. Until the first
  // repeat arrives the fixed prefix_retention_s applies. Default-off:
  // disabled, every retention decision is bit-identical to the fixed-window
  // engine (engine_test pins this).
  bool adaptive_prefix_retention = false;
  double adaptive_retention_mult = 2.0;
  double adaptive_retention_min_s = 0.05;
  double adaptive_retention_max_s = 5.0;
};

struct RequestTiming {
  uint64_t id = 0;
  SimTime submit_time = 0;
  SimTime admit_time = 0;
  SimTime first_token_time = 0;
  SimTime finish_time = 0;
  int prompt_tokens = 0;
  int output_tokens = 0;
  int prefill_tokens_charged = 0;  // After any shared-prefix discount.

  double queueing_delay() const { return admit_time - submit_time; }
  double service_time() const { return finish_time - admit_time; }
  double total_delay() const { return finish_time - submit_time; }
};

struct InferenceRequest {
  std::string tag;            // For debugging/tracing.
  int prompt_tokens = 0;
  int output_tokens = 1;      // Known at submit time (behaviour precomputed).
  uint64_t prefix_group = 0;  // 0 = no shared prefix.
  int shared_prefix_tokens = 0;
  std::function<void(const RequestTiming&)> on_complete;
};

struct EngineStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t steps = 0;
  double busy_seconds = 0;          // Sum of step durations with work in them.
  int64_t prefill_tokens = 0;       // Charged prefill tokens processed.
  int64_t prefill_tokens_saved = 0; // Tokens skipped via shared prefixes.
  // Prefix-reuse accounting: admissions whose shared prefix was already
  // resident; the subset revived off the retained (refs==0) LRU list; and
  // retained prefixes evicted under allocation pressure / expired past the
  // grace window (mirrors the KvCacheManager counters).
  uint64_t prefix_hits = 0;
  uint64_t retained_prefix_hits = 0;
  uint64_t retained_evictions = 0;
  uint64_t retained_expirations = 0;
  int64_t decode_tokens = 0;
  double peak_kv_bytes = 0;
  // Backlog observables (overload control): high-water marks of the arrival
  // queue and the oldest wait it ever imposed. Monotone over a run.
  uint64_t peak_queue_depth = 0;
  double peak_queue_age_s = 0;
};

class LlmEngine {
 public:
  LlmEngine(Simulator* sim, EngineConfig config, uint64_t seed);
  LlmEngine(const LlmEngine&) = delete;
  LlmEngine& operator=(const LlmEngine&) = delete;

  // Enqueues a request; fires on_complete from the simulation when done.
  // Returns the engine-assigned request id.
  uint64_t Submit(InferenceRequest request);

  // --- Resource introspection (used by METIS's joint scheduler) ---
  // KV bytes a (prompt, output) request will need, including block rounding
  // and the admission buffer.
  double BytesNeededFor(int prompt_tokens, int output_tokens) const;
  // Obtainable KV headroom: free blocks plus retained (refs==0) prefixes,
  // which the allocator reclaims on demand. With retention off this is
  // exactly the raw free pool.
  double free_kv_bytes() const { return kv_.free_bytes() + kv_.retained_bytes(); }
  // Free KV minus what the waiting queue will claim once admitted — the
  // "current batch" headroom the paper's controller derives from vLLM's
  // num-seqs / num-batched-tokens counters (§6). Negative under backlog.
  // Queue claims mirror AdmitIfFits's accounting: a request with a shared
  // prefix owns only its tail, the prefix is charged once per group, and not
  // at all when already resident.
  double projected_free_kv_bytes() const;
  double total_kv_bytes() const { return kv_.total_bytes(); }
  size_t queue_depth() const { return waiting_.size(); }
  size_t running_count() const { return running_.size(); }
  // Age (s) of the oldest request still waiting for admission; 0 when the
  // queue is empty. The queue-age signal the overload controller watches:
  // queue_depth says how MANY requests wait, this says how LONG the
  // head-of-line has waited — the leading indicator of deadline misses.
  double oldest_waiting_age() const;

  // Effective prefix-retention grace window (s) right now: the fixed
  // EngineConfig::prefix_retention_s, or the EWMA-derived adaptive window
  // once adaptive_prefix_retention has observed a hot-prefix repeat.
  double RetentionS() const;

  const EngineStats& stats() const { return stats_; }
  const EngineConfig& config() const { return config_; }
  const ModelSpec& model() const { return config_.model; }
  // Read-only view of the paged KV manager (tests, tracing).
  const KvCacheManager& kv() const { return kv_; }

  // Dollar cost of the GPU time this engine has been busy for.
  double busy_cost_usd() const;

 private:
  struct Rq {
    uint64_t id = 0;
    InferenceRequest req;
    RequestTiming timing;
    int charged_prefill = 0;   // Prefill tokens this request must compute.
    int prefilled = 0;         // Progress through charged_prefill.
    int generated = 0;
    bool holds_prefix = false; // Owns a reference on req.prefix_group.
  };

  void Kick();
  void PlanStep();
  bool PrefillBacklogFull() const;
  bool AdmitIfFits(Rq* rq);
  void Complete(std::unique_ptr<Rq> rq);

  Simulator* sim_;
  EngineConfig config_;
  KvCacheManager kv_;
  uint64_t next_id_ = 1;
  bool step_in_flight_ = false;

  std::deque<std::unique_ptr<Rq>> waiting_;
  std::vector<std::unique_ptr<Rq>> running_;
  EngineStats stats_;

  // Adaptive-retention signal (only touched when
  // config_.adaptive_prefix_retention): last submit time per prefix group and
  // the EWMA of hot-prefix inter-arrival gaps.
  std::unordered_map<uint64_t, SimTime> prefix_last_seen_;
  double prefix_interarrival_ewma_ = 0;
};

// API-hosted model client (profiler LLMs, GPT-4o serving comparisons):
// latency = RTT + input/prefill_rate + output/decode_rate with mild jitter;
// cost is per-token. Does not consume local GPU memory.
class ApiLlmClient {
 public:
  ApiLlmClient(Simulator* sim, ModelSpec model, uint64_t seed);

  // Fires `done(latency_seconds)` after the modeled API delay.
  // `billed_input_frac` < 1 models provider-side prompt caching: repeated
  // instruction/metadata prefixes are billed at a deep discount.
  void Call(int input_tokens, int output_tokens, std::function<void(double)> done,
            double billed_input_frac = 1.0);

  double CostOf(int input_tokens, int output_tokens) const;
  double total_cost_usd() const { return total_cost_usd_; }
  uint64_t calls() const { return calls_; }
  const ModelSpec& model() const { return model_; }

 private:
  Simulator* sim_;
  ModelSpec model_;
  uint64_t seed_;
  uint64_t calls_ = 0;
  double total_cost_usd_ = 0;
};

}  // namespace metis

#endif  // METIS_SRC_LLM_ENGINE_H_
