#include "src/llm/behavior.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/strings.h"

namespace metis {

BehaviorModel::BehaviorModel(BehaviorParams params, uint64_t seed)
    : params_(params), seed_(seed) {}

double BehaviorModel::LitmMultiplier(double position_frac, int context_tokens) const {
  double ramp = (static_cast<double>(context_tokens) - params_.litm_onset_tokens) /
                params_.litm_range_tokens;
  ramp = std::clamp(ramp, 0.0, 1.0);
  // 4p(1-p): zero at the edges (primacy/recency retained), max mid-context.
  double middleness = 4.0 * position_frac * (1.0 - position_frac);
  return 1.0 - params_.litm_strength * middleness * ramp;
}

namespace {

// Appends tokens to a space-joined string.
void AppendTokens(std::string& out, const std::vector<std::string>& tokens) {
  for (const auto& t : tokens) {
    if (!out.empty()) {
      out += ' ';
    }
    out += t;
  }
}

}  // namespace

GenerationResult BehaviorModel::Generate(const ModelSpec& model,
                                         const GenerationTask& task) const {
  Rng rng(seed_ ^ HashString64(model.name) ^ (task.rng_salt * 0x9E3779B97F4A7C15ull));
  GenerationResult result;

  if (task.mode == GenerationMode::kSummarize) {
    // Query-focused summary of one chunk. The budget competes across the
    // chunk's facts plus residual off-query material; a clearly salient fact
    // lets the summarizer lock on and waste little budget on noise, which is
    // why simple queries need only 10-20 intermediate tokens (Fig. 4c).
    int budget = std::max(1, task.summary_budget_tokens);
    double max_salience = 0;
    int fact_count = 0;
    for (const auto& f : task.facts) {
      ++fact_count;
      if (f.relevant) {
        max_salience = std::max(max_salience, f.salience);
      }
    }
    double competing = std::max(1, fact_count) + 2.0 * (1.0 - max_salience);
    double per_fact_budget = static_cast<double>(budget) / competing;
    double survival = std::clamp(per_fact_budget / params_.summary_tokens_per_fact, 0.0, 1.0);

    std::string text;
    int kept_tokens = 0;
    for (const auto& f : task.facts) {
      double salience_term = params_.salience_floor + (1.0 - params_.salience_floor) * f.salience;
      // Extracting a salient sentence is far easier than answering with it:
      // given budget, the map stage is near-lossless (which is what makes
      // map_reduce the quality ceiling, cf. the golden config of §5).
      double keep = 0.95 * salience_term * survival;
      if (!f.relevant) {
        keep *= 0.25;  // The summarizer filters most off-query material.
      }
      if (rng.Bernoulli(keep)) {
        FactInContext kept = f;
        kept.from_summary = true;
        kept.salience = std::min(1.0, f.salience + 0.25);  // Denoised by the map stage.
        result.expressed_facts.push_back(kept);
        AppendTokens(text, f.answer_tokens);
        kept_tokens += static_cast<int>(f.answer_tokens.size());
      }
    }
    // Summarizers write toward their length budget: the decode cost of the
    // map stage is what makes intermediate_length a real delay knob (Fig. 4c).
    int target = std::max(1, static_cast<int>(budget * rng.Uniform(0.75, 1.0)));
    int scaffold = std::max(0, target - kept_tokens);
    for (int i = 0; i < scaffold; ++i) {
      AppendTokens(text, {StrFormat("sum%d", static_cast<int>(rng.UniformInt(0, 9999)))});
    }
    result.text = std::move(text);
    result.output_tokens = std::max(kept_tokens + scaffold, 1);
    result.confidence = result.expressed_facts.empty() ? rng.Uniform(0.2, 0.5)
                                                       : rng.Uniform(0.75, 0.98);
    return result;
  }

  // --- kAnswer ---
  METIS_CHECK(task.mode == GenerationMode::kAnswer);
  std::string text;
  double best_salience = 0;
  int recovered_relevant = 0;

  // Complex questions need focused reading: off-query material in the
  // context distracts fact extraction itself, not just the final reasoning
  // step — the core of map_reduce's denoising advantage (Fig. 4a, Q3).
  int irrelevant_in_ctx = 0;
  for (const auto& f : task.facts) {
    irrelevant_in_ctx += f.relevant ? 0 : 1;
  }
  double ctx_noise_frac = task.facts.empty()
                              ? 0.0
                              : static_cast<double>(irrelevant_in_ctx) /
                                    static_cast<double>(task.facts.size());

  for (const auto& f : task.facts) {
    double salience_term = params_.salience_floor + (1.0 - params_.salience_floor) * f.salience;
    double litm = LitmMultiplier(f.position_frac, task.context_tokens);
    if (f.relevant) {
      double p = model.fact_recovery * salience_term * litm;
      if (task.high_complexity && !f.from_summary) {
        p *= 1.0 - 0.30 * ctx_noise_frac;
      }
      if (f.from_summary) {
        // Facts arriving via clean summaries are easier to use.
        p = std::min(1.0, p * 1.03);
      }
      if (rng.Bernoulli(p)) {
        result.expressed_facts.push_back(f);
        AppendTokens(text, f.answer_tokens);
        ++recovered_relevant;
        best_salience = std::max(best_salience, f.salience);
      }
    } else {
      // Distractor intrusion grows with context noise; distractors laundered
      // through a summary read as confident statements and intrude far more.
      double ramp = std::clamp((task.context_tokens - params_.litm_onset_tokens) /
                                   params_.litm_range_tokens,
                               0.0, 1.0);
      double p_intrude = f.from_summary
                             ? params_.summary_noise_intrusion
                             : params_.intrusion_base + params_.intrusion_noise_scale * ramp;
      if (rng.Bernoulli(p_intrude)) {
        AppendTokens(text, f.answer_tokens);
      }
    }
  }

  // Joint reasoning: the conclusion tokens require both (a) all needed facts
  // recovered and (b) a successful reasoning step, which long noisy contexts
  // degrade. Single-fact queries skip this entirely.
  bool all_facts = recovered_relevant >= task.num_required_facts;
  if (!task.conclusion_tokens.empty()) {
    double ramp = std::clamp(
        (task.context_tokens - params_.litm_onset_tokens) / params_.litm_range_tokens, 0.0, 1.0);
    double p_reason = model.reasoning_factor * (1.0 - params_.reasoning_noise_penalty * ramp);
    if (task.high_complexity) {
      p_reason *= 0.92;  // Why-style questions are harder to close out.
      // Off-query material in the context dilutes complex reasoning even in
      // short prompts; clean map summaries largely avoid this (Fig. 4a Q3).
      int irrelevant = 0;
      for (const auto& f : task.facts) {
        irrelevant += f.relevant ? 0 : 1;
      }
      if (!task.facts.empty()) {
        double noise_frac = static_cast<double>(irrelevant) /
                            static_cast<double>(task.facts.size());
        p_reason *= 1.0 - params_.complex_noise_penalty * noise_frac;
      }
    }
    if (all_facts && rng.Bernoulli(p_reason)) {
      AppendTokens(text, task.conclusion_tokens);
      result.reasoning_success = true;
    }
  } else {
    result.reasoning_success = all_facts;
  }

  // Models answer verbosely: scaffolding, question echoes, and hedges that
  // count against precision under token-F1 (why real RAG F1 sits well below
  // 1 even when the facts are right).
  int content_tokens = static_cast<int>(SplitWords(text).size());
  int verbosity = static_cast<int>(
      rng.Uniform(0.25, 0.65) * std::max(content_tokens, task.target_output_tokens / 2));
  for (int i = 0; i < verbosity; ++i) {
    AppendTokens(text, {StrFormat("fill%d", static_cast<int>(rng.UniformInt(0, 9999)))});
  }

  if (text.empty()) {
    // Models always say *something*, even when they recovered nothing.
    AppendTokens(text, {StrFormat("fill%d", static_cast<int>(rng.UniformInt(0, 9999)))});
  }
  result.text = std::move(text);
  int text_tokens = static_cast<int>(SplitWords(result.text).size());
  // The decoded length tracks the semantic content but never collapses to 0.
  result.output_tokens = std::max({text_tokens, task.target_output_tokens / 2, 1});

  // Confidence: strong when a salient relevant fact was expressed; used by
  // map_rerank to pick among per-chunk candidate answers.
  if (recovered_relevant > 0) {
    result.confidence = std::clamp(0.45 + 0.5 * best_salience + rng.Uniform(-0.05, 0.05),
                                   0.05, 0.99);
  } else {
    result.confidence = rng.Uniform(0.15, 0.45);
  }
  return result;
}

}  // namespace metis
