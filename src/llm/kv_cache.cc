#include "src/llm/kv_cache.h"

#include <cmath>

#include "src/common/check.h"

namespace metis {

KvCacheManager::KvCacheManager(double pool_bytes, int block_tokens, double kv_bytes_per_token)
    : block_tokens_(block_tokens),
      block_bytes_(static_cast<double>(block_tokens) * kv_bytes_per_token) {
  METIS_CHECK_GT(block_tokens, 0);
  METIS_CHECK_GT(kv_bytes_per_token, 0.0);
  METIS_CHECK_GT(pool_bytes, 0.0);
  total_blocks_ = static_cast<int64_t>(pool_bytes / block_bytes_);
  METIS_CHECK_GT(total_blocks_, 0);
}

int64_t KvCacheManager::BlocksForTokens(int64_t tokens) const {
  METIS_CHECK_GE(tokens, 0);
  return (tokens + block_tokens_ - 1) / block_tokens_;
}

double KvCacheManager::BytesForTokens(int64_t tokens) const {
  return static_cast<double>(BlocksForTokens(tokens)) * block_bytes_;
}

void KvCacheManager::DropRetained(uint64_t group) {
  auto it = prefixes_.find(group);
  METIS_CHECK(it != prefixes_.end());
  METIS_CHECK_EQ(it->second.refs, 0);
  METIS_CHECK_GT(it->second.retained_seq, 0ull);
  retained_.erase(it->second.retained_seq);
  retained_blocks_ -= it->second.blocks;
  used_blocks_ -= it->second.blocks;
  METIS_CHECK_GE(retained_blocks_, 0);
  METIS_CHECK_GE(used_blocks_, 0);
  prefixes_.erase(it);
}

void KvCacheManager::EvictRetainedFor(int64_t blocks) {
  while (blocks > free_blocks() && !retained_.empty()) {
    uint64_t victim = retained_.begin()->second;  // Oldest release first.
    DropRetained(victim);
    ++retained_evictions_;
  }
}

bool KvCacheManager::Allocate(uint64_t req, int64_t tokens) {
  METIS_CHECK(owned_.find(req) == owned_.end());
  int64_t blocks = BlocksForTokens(tokens);
  if (blocks > free_blocks()) {
    EvictRetainedFor(blocks);
  }
  if (blocks > free_blocks()) {
    return false;
  }
  used_blocks_ += blocks;
  owned_[req] = Owned{tokens, blocks};
  return true;
}

bool KvCacheManager::Extend(uint64_t req, int64_t extra_tokens) {
  auto it = owned_.find(req);
  METIS_CHECK(it != owned_.end());
  METIS_CHECK_GE(extra_tokens, 0);
  int64_t new_tokens = it->second.tokens + extra_tokens;
  int64_t new_blocks = BlocksForTokens(new_tokens);
  int64_t delta = new_blocks - it->second.blocks;
  if (delta > free_blocks()) {
    EvictRetainedFor(delta);
  }
  if (delta > free_blocks()) {
    return false;
  }
  used_blocks_ += delta;
  it->second.tokens = new_tokens;
  it->second.blocks = new_blocks;
  return true;
}

void KvCacheManager::Free(uint64_t req) {
  auto it = owned_.find(req);
  if (it == owned_.end()) {
    return;
  }
  used_blocks_ -= it->second.blocks;
  METIS_CHECK_GE(used_blocks_, 0);
  owned_.erase(it);
}

int64_t KvCacheManager::AcquirePrefix(uint64_t group, int64_t tokens) {
  auto it = prefixes_.find(group);
  if (it != prefixes_.end()) {
    if (it->second.refs > 0) {
      ++it->second.refs;
      return 0;
    }
    // Parked on the retained list: revive in place — blocks already resident.
    retained_.erase(it->second.retained_seq);
    retained_blocks_ -= it->second.blocks;
    METIS_CHECK_GE(retained_blocks_, 0);
    it->second.retained_seq = 0;
    it->second.refs = 1;
    ++retained_revivals_;
    return 0;
  }
  int64_t blocks = BlocksForTokens(tokens);
  if (blocks > free_blocks()) {
    EvictRetainedFor(blocks);
  }
  if (blocks > free_blocks()) {
    return -1;
  }
  used_blocks_ += blocks;
  prefixes_[group] = Prefix{blocks, 1, 0, 0};
  return blocks;
}

void KvCacheManager::ReleasePrefix(uint64_t group) {
  auto it = prefixes_.find(group);
  METIS_CHECK(it != prefixes_.end());
  METIS_CHECK_GT(it->second.refs, 0);
  if (--it->second.refs == 0) {
    used_blocks_ -= it->second.blocks;
    METIS_CHECK_GE(used_blocks_, 0);
    prefixes_.erase(it);
  }
}

void KvCacheManager::ReleasePrefixRetained(uint64_t group, double now) {
  auto it = prefixes_.find(group);
  METIS_CHECK(it != prefixes_.end());
  METIS_CHECK_GT(it->second.refs, 0);
  if (--it->second.refs == 0) {
    it->second.retained_seq = ++retained_seq_counter_;
    it->second.released_at = now;
    retained_[it->second.retained_seq] = group;
    retained_blocks_ += it->second.blocks;  // Still counted in used_blocks_.
  }
}

void KvCacheManager::ExpireRetained(double cutoff) {
  // Seq order is release order, which is time order under the monotone sim
  // clock, so expiry can stop at the first survivor.
  while (!retained_.empty()) {
    uint64_t group = retained_.begin()->second;
    auto it = prefixes_.find(group);
    METIS_CHECK(it != prefixes_.end());
    if (it->second.released_at > cutoff) {
      break;
    }
    DropRetained(group);
    ++retained_expirations_;
  }
}

bool KvCacheManager::PrefixResident(uint64_t group) const {
  // Referenced or retained: either way the prefix KV is on the GPU and an
  // admission in this group skips the shared prefill.
  return prefixes_.find(group) != prefixes_.end();
}

bool KvCacheManager::PrefixRetained(uint64_t group) const {
  auto it = prefixes_.find(group);
  return it != prefixes_.end() && it->second.refs == 0;
}

}  // namespace metis
