// Synthesis executors: run one RAG query end-to-end under a RagConfig.
//
// Mirrors the LangChain LLMChain pipelines the paper builds on (§6):
//   - stuff:       retrieve k chunks, concatenate into one prompt, one call.
//   - map_rerank:  one call per chunk; keep the most confident answer.
//   - map_reduce:  one summarize call per chunk (intermediate_length budget),
//                  then one reduce call over the concatenated summaries.
//
// Each executor is an async state machine over LlmEngine requests: generation
// outcomes are precomputed with the BehaviorModel (deterministic per
// query+config), while the engine supplies timing, queueing, and memory
// behaviour. The final answer is scored with token-F1 against the gold.

#ifndef METIS_SRC_SYNTHESIS_SYNTHESIS_H_
#define METIS_SRC_SYNTHESIS_SYNTHESIS_H_

#include <functional>
#include <optional>
#include <string>

#include "src/llm/behavior.h"
#include "src/llm/engine.h"
#include "src/quality/f1.h"
#include "src/sim/simulator.h"
#include "src/synthesis/config.h"
#include "src/workload/dataset.h"

namespace metis {

class RetrievalBatcher;

struct RagResult {
  int32_t query_id = -1;
  RagConfig config;
  std::string answer_text;
  double f1 = 0;
  double precision = 0;
  double recall = 0;

  SimTime exec_start = 0;   // When Execute() was called.
  SimTime finish_time = 0;  // When the final answer materialized.
  double exec_delay() const { return finish_time - exec_start; }

  int llm_calls = 0;
  int total_prompt_tokens = 0;
  int total_output_tokens = 0;
  int retrieved_chunks = 0;
  int gold_facts_retrieved = 0;  // Coverage diagnostic.
  int gold_facts_total = 0;
};

class SynthesisExecutor {
 public:
  // `batcher` (optional, not owned) coalesces same-tick retrievals from many
  // queued queries into one batched index sweep; null falls back to a
  // per-query index scan with identical timing and results.
  SynthesisExecutor(Simulator* sim, LlmEngine* engine, const BehaviorModel* behavior,
                    const Dataset* dataset, uint64_t seed,
                    RetrievalBatcher* batcher = nullptr);

  // Runs retrieval + synthesis for `query` under `config`; invokes `done`
  // from simulation context when the answer is complete. The three-argument
  // form retrieves at the stack-wide default depth (set_retrieval_quality /
  // the batcher's own quality); the four-argument form carries a per-QUERY
  // RetrievalQuality — the profiler-driven depth the scheduler decided for
  // this query — through the retrieval front half (batcher or direct scan).
  void Execute(const RagQuery& query, const RagConfig& config,
               std::function<void(RagResult)> done);
  void Execute(const RagQuery& query, const RagConfig& config,
               const std::optional<RetrievalQuality>& retrieval_quality,
               std::function<void(RagResult)> done);

  // Retrieval-depth knob applied to every direct (non-batcher) retrieval
  // without a per-query override; a batcher carries its own copy. No-op on
  // exact (flat) index backends. Set once at stack-build time (runner),
  // before queries execute.
  void set_retrieval_quality(const RetrievalQuality& quality) { retrieval_quality_ = quality; }
  const RetrievalQuality& retrieval_quality() const { return retrieval_quality_; }

  // --- Cross-query KV reuse (joint co-scheduling) ---
  // When enabled, synthesis contexts are assembled in CANONICAL chunk order:
  // instruction, then the retrieved chunks sorted by chunk id, then the
  // query-specific tail (the query text). Prefix groups are then keyed by the
  // content of that shared prefix — the ordered chunk-id list for stuff, the
  // single chunk id for mappers — instead of by query id, so concurrent
  // queries that retrieved the same chunks alias resident KV blocks and skip
  // the shared prefill (the engine's prefix retention holds hot chunk
  // prefixes across a short gap). Off (default): the per-query
  // instruction+query prefix layout, bit-identical to the pre-reuse executor.
  void set_cross_query_prefix(bool on) { cross_query_prefix_ = on; }
  bool cross_query_prefix() const { return cross_query_prefix_; }

  // --- Prompt-size estimators (used by METIS's joint scheduler, §4.3) ---
  int StuffPromptTokens(int query_tokens, int num_chunks) const;
  int MapperPromptTokens(int query_tokens) const;
  int ReducePromptTokens(int query_tokens, int num_chunks, int intermediate_tokens) const;

  // Instruction prefix prepended to every call (shared across sibling calls
  // of the same query, which is what prefix sharing exploits).
  static constexpr int kInstructionTokens = 64;
  // Modeled retrieval latency; >100x faster than synthesis (paper §2).
  static constexpr double kRetrievalSeconds = 0.004;

 private:
  struct ChunkFacts;

  // Builds the per-chunk fact descriptors for a retrieved chunk.
  ChunkFacts DescribeChunk(const RagQuery& query, ChunkId chunk_id) const;

  // Retrieval front half shared by the three pipelines: top-`num_chunks` ids
  // arrive at `then` exactly kRetrievalSeconds from now, through the batcher
  // when one is wired (shared sweep) or a direct per-query scan otherwise.
  // `quality` (engaged for per-query-depth executions) overrides the stack
  // default for this one retrieval.
  void RetrieveChunks(const RagQuery& query, int num_chunks,
                      const std::optional<RetrievalQuality>& quality,
                      std::function<void(std::vector<ChunkId>)> then);

  void RunStuff(const RagQuery& query, const RagConfig& config,
                const std::optional<RetrievalQuality>& quality,
                std::function<void(RagResult)> done);
  void RunMapRerank(const RagQuery& query, const RagConfig& config,
                    const std::optional<RetrievalQuality>& quality,
                    std::function<void(RagResult)> done);
  void RunMapReduce(const RagQuery& query, const RagConfig& config,
                    const std::optional<RetrievalQuality>& quality,
                    std::function<void(RagResult)> done);

  RagResult Finalize(const RagQuery& query, const RagConfig& config, SimTime exec_start,
                     const std::string& answer_text) const;

  uint64_t TaskSalt(const RagQuery& query, const RagConfig& config, const char* stage,
                    int index) const;

  // Content-keyed prefix-group id over `n` chunk ids (cross-query reuse):
  // stable per corpus + run seed, identical for any two queries whose shared
  // prefix holds the same ordered chunk ids.
  uint64_t ChunkPrefixGroup(uint64_t tag, const ChunkId* ids, size_t n) const;

  Simulator* sim_;
  LlmEngine* engine_;
  const BehaviorModel* behavior_;
  const Dataset* dataset_;
  uint64_t seed_;
  RetrievalBatcher* batcher_;
  RetrievalQuality retrieval_quality_;
  bool cross_query_prefix_ = false;
  uint64_t corpus_salt_ = 0;  // Hash of the dataset name ^ seed (group keys).
};

}  // namespace metis

#endif  // METIS_SRC_SYNTHESIS_SYNTHESIS_H_
