// RAG configuration types (the paper's three knobs, Fig. 2).

#ifndef METIS_SRC_SYNTHESIS_CONFIG_H_
#define METIS_SRC_SYNTHESIS_CONFIG_H_

#include <string>

namespace metis {

// Knob 2: how retrieved chunks are synthesized into the LLM input (Fig. 3).
enum class SynthesisMethod {
  kMapRerank,  // Answer from each chunk separately; keep the most confident.
  kStuff,      // Concatenate all chunks into one prompt.
  kMapReduce,  // Summarize each chunk, then answer over the summaries.
};

const char* SynthesisMethodName(SynthesisMethod m);
SynthesisMethod SynthesisMethodFromName(const std::string& name);

// A fully-specified RAG configuration for one query.
struct RagConfig {
  SynthesisMethod method = SynthesisMethod::kStuff;
  int num_chunks = 5;            // Knob 1.
  int intermediate_tokens = 50;  // Knob 3 (map_reduce only).

  bool operator==(const RagConfig& other) const {
    return method == other.method && num_chunks == other.num_chunks &&
           intermediate_tokens == other.intermediate_tokens;
  }
  bool operator!=(const RagConfig& other) const { return !(*this == other); }
};

std::string RagConfigToString(const RagConfig& config);

}  // namespace metis

#endif  // METIS_SRC_SYNTHESIS_CONFIG_H_
