#include "src/synthesis/synthesis.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/core/retrieval_batcher.h"
#include "src/text/tokenizer.h"

namespace metis {

struct SynthesisExecutor::ChunkFacts {
  ChunkId chunk_id = -1;
  std::vector<FactInContext> facts;  // position_frac left as offset-in-chunk.
  std::vector<int> offsets;          // Token offset of each fact in the chunk.
};

SynthesisExecutor::SynthesisExecutor(Simulator* sim, LlmEngine* engine,
                                     const BehaviorModel* behavior, const Dataset* dataset,
                                     uint64_t seed, RetrievalBatcher* batcher)
    : sim_(sim),
      engine_(engine),
      behavior_(behavior),
      dataset_(dataset),
      seed_(seed),
      batcher_(batcher),
      corpus_salt_(HashString64(dataset->profile().name) ^ seed) {
  METIS_CHECK(sim != nullptr);
  METIS_CHECK(engine != nullptr);
  METIS_CHECK(behavior != nullptr);
  METIS_CHECK(dataset != nullptr);
}

uint64_t SynthesisExecutor::ChunkPrefixGroup(uint64_t tag, const ChunkId* ids,
                                             size_t n) const {
  // Corpus-salted so mixed-workload stacks sharing one engine cannot alias
  // chunk ids across datasets; the tag separates stuff-style (many-chunk)
  // prefixes from mapper (single-chunk) prefixes of the same ids.
  uint64_t state = corpus_salt_ ^ tag;
  for (size_t i = 0; i < n; ++i) {
    state ^= static_cast<uint64_t>(ids[i]) + 0x9E3779B97F4A7C15ull;
    SplitMix64(state);
  }
  uint64_t group = SplitMix64(state);
  return group != 0 ? group : 1;  // 0 means "no shared prefix" to the engine.
}

int SynthesisExecutor::StuffPromptTokens(int query_tokens, int num_chunks) const {
  return kInstructionTokens + query_tokens + num_chunks * dataset_->profile().chunk_tokens;
}

int SynthesisExecutor::MapperPromptTokens(int query_tokens) const {
  return kInstructionTokens + query_tokens + dataset_->profile().chunk_tokens;
}

int SynthesisExecutor::ReducePromptTokens(int query_tokens, int num_chunks,
                                          int intermediate_tokens) const {
  return kInstructionTokens + query_tokens + num_chunks * intermediate_tokens;
}

uint64_t SynthesisExecutor::TaskSalt(const RagQuery& query, const RagConfig& config,
                                     const char* stage, int index) const {
  return HashString64(StrFormat("q%d:%s:k%d:L%d:%s:%d", query.id,
                                SynthesisMethodName(config.method), config.num_chunks,
                                config.intermediate_tokens, stage, index)) ^
         seed_;
}

SynthesisExecutor::ChunkFacts SynthesisExecutor::DescribeChunk(const RagQuery& query,
                                                               ChunkId chunk_id) const {
  ChunkFacts out;
  out.chunk_id = chunk_id;
  const Chunk& chunk = dataset_->db().chunk(chunk_id);
  std::unordered_set<std::string> query_tokens;
  for (const auto& t : Tokenize(query.text)) {
    query_tokens.insert(t);
  }

  for (int32_t fid : chunk.fact_ids) {
    const Fact& fact = dataset_->fact(fid);
    FactInContext f;
    f.fact_id = fid;
    f.answer_tokens = fact.answer_tokens;
    f.relevant = fact.gold && fact.query_id == query.id;
    // Salience: how strongly the fact's entity anchors match the query text.
    int matched = 0;
    for (const auto& e : fact.entity_words) {
      if (query_tokens.count(e) > 0) {
        ++matched;
      }
    }
    double frac = fact.entity_words.empty()
                      ? 0.0
                      : static_cast<double>(matched) / static_cast<double>(fact.entity_words.size());
    f.salience = std::clamp(0.15 + 0.85 * frac, 0.0, 1.0);
    out.facts.push_back(std::move(f));
    out.offsets.push_back(fact.offset_tokens);
  }
  return out;
}

RagResult SynthesisExecutor::Finalize(const RagQuery& query, const RagConfig& config,
                                      SimTime exec_start, const std::string& answer_text) const {
  RagResult r;
  r.query_id = query.id;
  r.config = config;
  r.answer_text = answer_text;
  r.exec_start = exec_start;
  r.finish_time = sim_->now();
  F1Breakdown f1 = TokenF1(Tokenize(answer_text), query.gold_answer_tokens);
  r.f1 = f1.f1;
  r.precision = f1.precision;
  r.recall = f1.recall;
  return r;
}

void SynthesisExecutor::Execute(const RagQuery& query, const RagConfig& config,
                                std::function<void(RagResult)> done) {
  Execute(query, config, std::nullopt, std::move(done));
}

void SynthesisExecutor::Execute(const RagQuery& query, const RagConfig& config,
                                const std::optional<RetrievalQuality>& retrieval_quality,
                                std::function<void(RagResult)> done) {
  METIS_CHECK(done != nullptr);
  RagConfig cfg = config;
  cfg.num_chunks = std::clamp(cfg.num_chunks, 1,
                              static_cast<int>(dataset_->db().num_chunks()));
  if (cfg.method == SynthesisMethod::kStuff) {
    // A stuff prompt must fit the model's context window (with headroom for
    // the instruction, query and generation) — real pipelines truncate here.
    int budget = static_cast<int>(engine_->model().max_context_tokens * 0.9) -
                 kInstructionTokens - static_cast<int>(CountTokens(query.text));
    int max_k = std::max(1, budget / dataset_->profile().chunk_tokens);
    cfg.num_chunks = std::min(cfg.num_chunks, max_k);
  }
  cfg.intermediate_tokens = std::max(cfg.intermediate_tokens, 1);
  switch (cfg.method) {
    case SynthesisMethod::kStuff:
      RunStuff(query, cfg, retrieval_quality, std::move(done));
      return;
    case SynthesisMethod::kMapRerank:
      RunMapRerank(query, cfg, retrieval_quality, std::move(done));
      return;
    case SynthesisMethod::kMapReduce:
      RunMapReduce(query, cfg, retrieval_quality, std::move(done));
      return;
  }
  METIS_CHECK(false && "unreachable");
}

namespace {

// Counts how many of the query's gold facts appear in the retrieved set.
int CountGoldCoverage(const Dataset& dataset, const RagQuery& query,
                      const std::vector<ChunkId>& chunks) {
  std::unordered_set<ChunkId> set(chunks.begin(), chunks.end());
  int covered = 0;
  for (int32_t fid : query.gold_fact_ids) {
    if (set.count(dataset.fact(fid).chunk_id) > 0) {
      ++covered;
    }
  }
  return covered;
}

}  // namespace

void SynthesisExecutor::RetrieveChunks(const RagQuery& query, int num_chunks,
                                       const std::optional<RetrievalQuality>& quality,
                                       std::function<void(std::vector<ChunkId>)> then) {
  size_t k = static_cast<size_t>(num_chunks);
  if (batcher_ != nullptr) {
    if (quality.has_value()) {
      batcher_->Submit(query.text, k, *quality, std::move(then));
    } else {
      batcher_->Submit(query.text, k, std::move(then));
    }
    return;
  }
  sim_->ScheduleAfter(kRetrievalSeconds,
                      [this, text = query.text, k, q = quality.value_or(retrieval_quality_),
                       then = std::move(then)]() mutable {
                        then(dataset_->db().Retrieve(text, k, q));
                      });
}

void SynthesisExecutor::RunStuff(const RagQuery& query, const RagConfig& config,
                                 const std::optional<RetrievalQuality>& quality,
                                 std::function<void(RagResult)> done) {
  SimTime exec_start = sim_->now();
  RetrieveChunks(query, config.num_chunks, quality, [this, query, config, exec_start,
                                            done = std::move(done)](
                                               std::vector<ChunkId> chunks) mutable {
    int query_tokens = static_cast<int>(CountTokens(query.text));
    int chunk_tokens = dataset_->profile().chunk_tokens;
    int prompt_tokens = StuffPromptTokens(query_tokens, static_cast<int>(chunks.size()));

    // Cross-query reuse: canonical order — instruction, chunks in retrieval
    // order, query tail — so two queries retrieving the same chunk list share
    // a byte-identical prefix of instruction + all k chunks. The group is
    // keyed by that ordered id list, not the query. Retrieval order (not an
    // id sort) is deliberate: duplicate queries — the dominant sharing source
    // — retrieve identical lists anyway, while re-sorting by id scatters the
    // relevance-ordered gold facts into the position-sensitivity penalty band
    // (BehaviorModel::LitmMultiplier) and costs ~0.1 mean F1 for no
    // measurable extra aliasing.
    uint64_t prefix_group = 0;
    int shared_prefix = 0;
    if (cross_query_prefix_ && !chunks.empty()) {
      prefix_group = ChunkPrefixGroup(0x53544646ull /*STFF*/, chunks.data(), chunks.size());
      shared_prefix = kInstructionTokens + static_cast<int>(chunks.size()) * chunk_tokens;
    }

    GenerationTask task;
    task.mode = GenerationMode::kAnswer;
    task.context_tokens = prompt_tokens;
    task.require_joint = query.requires_joint;
    task.high_complexity = query.high_complexity;
    task.num_required_facts = query.num_facts;
    task.conclusion_tokens = query.conclusion_tokens;
    task.target_output_tokens = query.target_output_tokens;
    task.rng_salt = TaskSalt(query, config, "stuff", 0);

    // Canonical layout puts the query AFTER the chunk block; legacy layout
    // puts it before. Only the per-fact positions move — token counts match.
    int header = cross_query_prefix_ ? kInstructionTokens : kInstructionTokens + query_tokens;
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      ChunkFacts cf = DescribeChunk(query, chunks[ci]);
      for (size_t fi = 0; fi < cf.facts.size(); ++fi) {
        FactInContext f = cf.facts[fi];
        f.position_frac = static_cast<double>(header + static_cast<int>(ci) * chunk_tokens +
                                              cf.offsets[fi]) /
                          static_cast<double>(prompt_tokens);
        task.facts.push_back(std::move(f));
      }
    }

    GenerationResult gen = behavior_->Generate(engine_->model(), task);

    int coverage = CountGoldCoverage(*dataset_, query, chunks);
    InferenceRequest req;
    req.tag = StrFormat("q%d-stuff", query.id);
    req.prompt_tokens = prompt_tokens;
    req.output_tokens = std::max(1, gen.output_tokens);
    req.prefix_group = prefix_group;
    req.shared_prefix_tokens = shared_prefix;
    req.on_complete = [this, query, config, exec_start, coverage, chunks_n = chunks.size(),
                       text = gen.text, done = std::move(done)](const RequestTiming& t) {
      RagResult r = Finalize(query, config, exec_start, text);
      r.llm_calls = 1;
      r.total_prompt_tokens = t.prompt_tokens;
      r.total_output_tokens = t.output_tokens;
      r.retrieved_chunks = static_cast<int>(chunks_n);
      r.gold_facts_retrieved = coverage;
      r.gold_facts_total = static_cast<int>(query.gold_fact_ids.size());
      done(std::move(r));
    };
    engine_->Submit(std::move(req));
  });
}

void SynthesisExecutor::RunMapRerank(const RagQuery& query, const RagConfig& config,
                                     const std::optional<RetrievalQuality>& quality,
                                     std::function<void(RagResult)> done) {
  SimTime exec_start = sim_->now();
  RetrieveChunks(query, config.num_chunks, quality, [this, query, config, exec_start,
                                            done = std::move(done)](
                                               std::vector<ChunkId> chunks) mutable {
    int query_tokens = static_cast<int>(CountTokens(query.text));
    int prompt_tokens = MapperPromptTokens(query_tokens);
    // Legacy: all of this query's mappers share its instruction+query prefix.
    // Cross-query: instruction+chunk leads and the query trails, so the group
    // is per CHUNK and aliases across queries that retrieved it.
    uint64_t prefix_group = 0x52524Bull ^ (static_cast<uint64_t>(query.id) << 8) ^ seed_;
    int shared_prefix = kInstructionTokens + query_tokens;
    if (cross_query_prefix_) {
      shared_prefix = kInstructionTokens + dataset_->profile().chunk_tokens;
    }

    struct State {
      int outstanding = 0;
      double best_confidence = -1;
      std::string best_text;
      int llm_calls = 0;
      int prompt_total = 0;
      int output_total = 0;
      std::function<void(RagResult)> done;
    };
    auto state = std::make_shared<State>();
    state->outstanding = static_cast<int>(chunks.size());
    state->done = std::move(done);
    int coverage = CountGoldCoverage(*dataset_, query, chunks);

    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      ChunkFacts cf = DescribeChunk(query, chunks[ci]);
      GenerationTask task;
      task.mode = GenerationMode::kAnswer;
      task.context_tokens = prompt_tokens;
      task.require_joint = query.requires_joint;
      task.high_complexity = query.high_complexity;
      task.num_required_facts = query.num_facts;
      task.conclusion_tokens = query.conclusion_tokens;
      task.target_output_tokens = query.target_output_tokens;
      task.rng_salt = TaskSalt(query, config, "rerank", static_cast<int>(ci));
      int header = cross_query_prefix_ ? kInstructionTokens : kInstructionTokens + query_tokens;
      for (size_t fi = 0; fi < cf.facts.size(); ++fi) {
        FactInContext f = cf.facts[fi];
        f.position_frac =
            static_cast<double>(header + cf.offsets[fi]) / static_cast<double>(prompt_tokens);
        task.facts.push_back(std::move(f));
      }
      GenerationResult gen = behavior_->Generate(engine_->model(), task);

      InferenceRequest req;
      req.tag = StrFormat("q%d-rerank-%zu", query.id, ci);
      req.prompt_tokens = prompt_tokens;
      req.output_tokens = std::max(1, gen.output_tokens);
      req.prefix_group = cross_query_prefix_
                             ? ChunkPrefixGroup(0x5252414Bull /*RRAK*/, &chunks[ci], 1)
                             : prefix_group;
      req.shared_prefix_tokens = shared_prefix;
      req.on_complete = [this, query, config, exec_start, state, coverage,
                         chunks_n = chunks.size(), confidence = gen.confidence,
                         text = gen.text](const RequestTiming& t) {
        state->llm_calls += 1;
        state->prompt_total += t.prompt_tokens;
        state->output_total += t.output_tokens;
        if (confidence > state->best_confidence) {
          state->best_confidence = confidence;
          state->best_text = text;
        }
        if (--state->outstanding == 0) {
          RagResult r = Finalize(query, config, exec_start, state->best_text);
          r.llm_calls = state->llm_calls;
          r.total_prompt_tokens = state->prompt_total;
          r.total_output_tokens = state->output_total;
          r.retrieved_chunks = static_cast<int>(chunks_n);
          r.gold_facts_retrieved = coverage;
          r.gold_facts_total = static_cast<int>(query.gold_fact_ids.size());
          state->done(std::move(r));
        }
      };
      engine_->Submit(std::move(req));
    }
  });
}

void SynthesisExecutor::RunMapReduce(const RagQuery& query, const RagConfig& config,
                                     const std::optional<RetrievalQuality>& quality,
                                     std::function<void(RagResult)> done) {
  SimTime exec_start = sim_->now();
  RetrieveChunks(query, config.num_chunks, quality, [this, query, config, exec_start,
                                            done = std::move(done)](
                                               std::vector<ChunkId> chunks) mutable {
    int query_tokens = static_cast<int>(CountTokens(query.text));
    int mapper_prompt = MapperPromptTokens(query_tokens);
    // Same per-query vs per-chunk group split as map_rerank; the summarize
    // tag keeps these prefixes distinct from rerank prefixes of one chunk
    // (different instruction text in a real pipeline).
    uint64_t prefix_group = 0x4D4152ull ^ (static_cast<uint64_t>(query.id) << 8) ^ seed_;
    int shared_prefix = kInstructionTokens + query_tokens;
    if (cross_query_prefix_) {
      shared_prefix = kInstructionTokens + dataset_->profile().chunk_tokens;
    }

    struct MapOut {
      std::vector<FactInContext> facts;
      int output_tokens = 0;
    };
    struct State {
      int outstanding = 0;
      std::vector<MapOut> outs;
      int llm_calls = 0;
      int prompt_total = 0;
      int output_total = 0;
      std::function<void(RagResult)> done;
    };
    auto state = std::make_shared<State>();
    state->outstanding = static_cast<int>(chunks.size());
    state->outs.resize(chunks.size());
    state->done = std::move(done);
    int coverage = CountGoldCoverage(*dataset_, query, chunks);

    auto launch_reduce = [this, query, config, exec_start, state, coverage,
                          query_tokens, chunks_n = chunks.size()]() {
      // Concatenate summaries in chunk order; facts land at their summary's
      // offset in a short, denoised context.
      int header = kInstructionTokens + query_tokens;
      int total = header;
      for (const auto& o : state->outs) {
        total += o.output_tokens;
      }
      GenerationTask task;
      task.mode = GenerationMode::kAnswer;
      task.context_tokens = total;
      task.require_joint = query.requires_joint;
      task.high_complexity = query.high_complexity;
      task.num_required_facts = query.num_facts;
      task.conclusion_tokens = query.conclusion_tokens;
      task.target_output_tokens = query.target_output_tokens;
      task.rng_salt = TaskSalt(query, config, "reduce", 0);
      int offset = header;
      for (const auto& o : state->outs) {
        for (const FactInContext& f : o.facts) {
          FactInContext placed = f;
          placed.position_frac = static_cast<double>(offset) / static_cast<double>(total);
          task.facts.push_back(std::move(placed));
        }
        offset += o.output_tokens;
      }
      GenerationResult gen = behavior_->Generate(engine_->model(), task);

      InferenceRequest req;
      req.tag = StrFormat("q%d-reduce", query.id);
      req.prompt_tokens = std::max(1, total);
      req.output_tokens = std::max(1, gen.output_tokens);
      req.on_complete = [this, query, config, exec_start, state, coverage, chunks_n,
                         text = gen.text](const RequestTiming& t) {
        state->llm_calls += 1;
        state->prompt_total += t.prompt_tokens;
        state->output_total += t.output_tokens;
        RagResult r = Finalize(query, config, exec_start, text);
        r.llm_calls = state->llm_calls;
        r.total_prompt_tokens = state->prompt_total;
        r.total_output_tokens = state->output_total;
        r.retrieved_chunks = static_cast<int>(chunks_n);
        r.gold_facts_retrieved = coverage;
        r.gold_facts_total = static_cast<int>(query.gold_fact_ids.size());
        state->done(std::move(r));
      };
      engine_->Submit(std::move(req));
    };

    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      ChunkFacts cf = DescribeChunk(query, chunks[ci]);
      GenerationTask task;
      task.mode = GenerationMode::kSummarize;
      task.context_tokens = mapper_prompt;
      task.summary_budget_tokens = config.intermediate_tokens;
      task.rng_salt = TaskSalt(query, config, "map", static_cast<int>(ci));
      task.facts = cf.facts;  // Position inside one chunk barely matters.
      GenerationResult gen = behavior_->Generate(engine_->model(), task);

      InferenceRequest req;
      req.tag = StrFormat("q%d-map-%zu", query.id, ci);
      req.prompt_tokens = mapper_prompt;
      req.output_tokens = std::max(1, gen.output_tokens);
      req.prefix_group = cross_query_prefix_
                             ? ChunkPrefixGroup(0x4D415053ull /*MAPS*/, &chunks[ci], 1)
                             : prefix_group;
      req.shared_prefix_tokens = shared_prefix;
      req.on_complete = [state, ci, facts = gen.expressed_facts,
                         launch_reduce](const RequestTiming& t) {
        state->llm_calls += 1;
        state->prompt_total += t.prompt_tokens;
        state->output_total += t.output_tokens;
        state->outs[ci].facts = facts;
        state->outs[ci].output_tokens = t.output_tokens;
        if (--state->outstanding == 0) {
          launch_reduce();
        }
      };
      engine_->Submit(std::move(req));
    }
  });
}

}  // namespace metis
