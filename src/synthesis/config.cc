#include "src/synthesis/config.h"

#include <cstdlib>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace metis {

const char* SynthesisMethodName(SynthesisMethod m) {
  switch (m) {
    case SynthesisMethod::kMapRerank:
      return "map_rerank";
    case SynthesisMethod::kStuff:
      return "stuff";
    case SynthesisMethod::kMapReduce:
      return "map_reduce";
  }
  return "unknown";
}

SynthesisMethod SynthesisMethodFromName(const std::string& name) {
  if (name == "map_rerank") {
    return SynthesisMethod::kMapRerank;
  }
  if (name == "stuff") {
    return SynthesisMethod::kStuff;
  }
  if (name == "map_reduce") {
    return SynthesisMethod::kMapReduce;
  }
  METIS_CHECK(false && "unknown synthesis method");
  std::abort();
}

std::string RagConfigToString(const RagConfig& config) {
  if (config.method == SynthesisMethod::kMapReduce) {
    return StrFormat("%s(k=%d,L=%d)", SynthesisMethodName(config.method), config.num_chunks,
                     config.intermediate_tokens);
  }
  return StrFormat("%s(k=%d)", SynthesisMethodName(config.method), config.num_chunks);
}

}  // namespace metis
