// Deterministic text embeddings.
//
// Stand-in for Cohere-embed-v3 / all-mpnet-base-v2 / text-embedding-3-large
// (paper §6, §A.2): a hashed bag-of-words+bigrams vector, L2-normalized.
// Documents sharing topical words with a query land close in L2/cosine space,
// which is the only property the retrieval pipeline depends on. Different
// model names use different hash salts and dimensions, so switching embedding
// models reshuffles near-ties without changing retrieval quality — matching
// the paper's observation that the embedding choice moves F1 by <1%.

#ifndef METIS_SRC_EMBED_EMBEDDING_H_
#define METIS_SRC_EMBED_EMBEDDING_H_

#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"

namespace metis {

using Embedding = std::vector<float>;

struct EmbeddingModelSpec {
  std::string name;
  size_t dim = 256;
  uint64_t hash_salt = 0;
  // Weight of bigram features relative to unigrams (adds word-order signal).
  double bigram_weight = 0.5;
};

// Returns the catalog of embedding models used by the experiments.
const std::vector<EmbeddingModelSpec>& EmbeddingModelCatalog();

// Looks up a catalog model by name; aborts if unknown.
const EmbeddingModelSpec& GetEmbeddingModel(std::string_view name);

class EmbeddingModel {
 public:
  explicit EmbeddingModel(EmbeddingModelSpec spec);

  // Embeds text; deterministic for a given (model, text).
  Embedding Embed(std::string_view text) const;

  // Embeds a batch of texts, sharding the tokenize+hash work across `pool`
  // when given (each text is independent, so results[i] == Embed(texts[i])
  // exactly, for any pool size). Null or single-threaded pools run inline.
  std::vector<Embedding> EmbedBatch(const std::vector<std::string>& texts,
                                    ThreadPool* pool = nullptr) const;

  size_t dim() const { return spec_.dim; }
  const std::string& name() const { return spec_.name; }

 private:
  EmbeddingModelSpec spec_;
};

// Bounded LRU memo cache over EmbeddingModel::Embed.
//
// Tokenizing + hashing a query costs far more than the lookup, and the same
// query text is embedded many times across a run (profiler probe, retrieval,
// golden-config feedback, per-config sweeps), so a small cache removes almost
// all repeat work. Not thread-safe: callers embed on the simulation thread
// before handing vectors to the (worker-pool) search sweep.
class EmbeddingCache {
 public:
  EmbeddingCache(const EmbeddingModel* model, size_t capacity);

  // Returns the embedding for `text`, computing and memoizing it on a miss.
  // The reference stays valid until the next Get() (eviction may free it).
  const Embedding& Get(const std::string& text);

  // Batched Get: serves hits from the cache, then embeds the *unique* missing
  // texts in one EmbedBatch call (sharded across `pool` when given) and
  // memoizes them. Returns owned copies, so the results survive any later
  // eviction. Counter semantics: each initially-cached occurrence counts one
  // hit; each unique missing text counts one miss (the work actually done) —
  // duplicate misses within the batch are served from the single computation.
  std::vector<Embedding> GetBatch(const std::vector<std::string>& texts,
                                  ThreadPool* pool = nullptr);

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t size() const { return lru_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  // Inserts a freshly computed embedding (evicting the LRU entry at
  // capacity); shared by the Get and GetBatch miss paths.
  const Embedding& Insert(const std::string& text, Embedding value);

  const EmbeddingModel* model_;
  size_t capacity_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  // Front = most recently used. The map keys view the strings owned by the
  // list nodes (stable storage), avoiding a second copy of each text.
  std::list<std::pair<std::string, Embedding>> lru_;
  std::unordered_map<std::string_view, std::list<std::pair<std::string, Embedding>>::iterator>
      map_;
};

// Squared L2 distance between equal-dimension vectors.
float L2DistanceSquared(const Embedding& a, const Embedding& b);

// Cosine similarity (vectors need not be normalized).
float CosineSimilarity(const Embedding& a, const Embedding& b);

}  // namespace metis

#endif  // METIS_SRC_EMBED_EMBEDDING_H_
