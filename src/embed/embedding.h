// Deterministic text embeddings.
//
// Stand-in for Cohere-embed-v3 / all-mpnet-base-v2 / text-embedding-3-large
// (paper §6, §A.2): a hashed bag-of-words+bigrams vector, L2-normalized.
// Documents sharing topical words with a query land close in L2/cosine space,
// which is the only property the retrieval pipeline depends on. Different
// model names use different hash salts and dimensions, so switching embedding
// models reshuffles near-ties without changing retrieval quality — matching
// the paper's observation that the embedding choice moves F1 by <1%.

#ifndef METIS_SRC_EMBED_EMBEDDING_H_
#define METIS_SRC_EMBED_EMBEDDING_H_

#include <string>
#include <string_view>
#include <vector>

namespace metis {

using Embedding = std::vector<float>;

struct EmbeddingModelSpec {
  std::string name;
  size_t dim = 256;
  uint64_t hash_salt = 0;
  // Weight of bigram features relative to unigrams (adds word-order signal).
  double bigram_weight = 0.5;
};

// Returns the catalog of embedding models used by the experiments.
const std::vector<EmbeddingModelSpec>& EmbeddingModelCatalog();

// Looks up a catalog model by name; aborts if unknown.
const EmbeddingModelSpec& GetEmbeddingModel(std::string_view name);

class EmbeddingModel {
 public:
  explicit EmbeddingModel(EmbeddingModelSpec spec);

  // Embeds text; deterministic for a given (model, text).
  Embedding Embed(std::string_view text) const;

  size_t dim() const { return spec_.dim; }
  const std::string& name() const { return spec_.name; }

 private:
  EmbeddingModelSpec spec_;
};

// Squared L2 distance between equal-dimension vectors.
float L2DistanceSquared(const Embedding& a, const Embedding& b);

// Cosine similarity (vectors need not be normalized).
float CosineSimilarity(const Embedding& a, const Embedding& b);

}  // namespace metis

#endif  // METIS_SRC_EMBED_EMBEDDING_H_
