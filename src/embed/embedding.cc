#include "src/embed/embedding.h"

#include <cmath>
#include <unordered_map>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/text/tokenizer.h"

namespace metis {

const std::vector<EmbeddingModelSpec>& EmbeddingModelCatalog() {
  // Dimensions match the real models' output sizes; at these widths the
  // hashed-projection collision noise (~1/sqrt(dim)) stays well below the
  // topical-overlap signal even for corpora of a few thousand chunks.
  static const std::vector<EmbeddingModelSpec> kCatalog = {
      {"cohere-embed-v3-sim", 1024, 0x1001, 0.5},
      {"all-mpnet-base-v2-sim", 768, 0x2002, 0.4},
      {"text-embedding-3-large-256-sim", 1024, 0x3003, 0.6},
  };
  return kCatalog;
}

const EmbeddingModelSpec& GetEmbeddingModel(std::string_view name) {
  for (const auto& spec : EmbeddingModelCatalog()) {
    if (spec.name == name) {
      return spec;
    }
  }
  METIS_CHECK(false && "unknown embedding model");
  std::abort();
}

EmbeddingModel::EmbeddingModel(EmbeddingModelSpec spec) : spec_(std::move(spec)) {
  METIS_CHECK_GT(spec_.dim, 0u);
}

Embedding EmbeddingModel::Embed(std::string_view text) const {
  Embedding v(spec_.dim, 0.0f);
  std::vector<std::string> tokens = Tokenize(text);

  auto add_feature = [&](uint64_t h, double weight) {
    // Two hashed buckets with signed contributions approximate a random
    // projection; this keeps unrelated texts near-orthogonal.
    uint64_t st = h ^ spec_.hash_salt;
    uint64_t h1 = SplitMix64(st);
    uint64_t h2 = SplitMix64(st);
    size_t i1 = static_cast<size_t>(h1 % spec_.dim);
    size_t i2 = static_cast<size_t>(h2 % spec_.dim);
    float s1 = (h1 >> 63) ? 1.0f : -1.0f;
    float s2 = (h2 >> 63) ? 1.0f : -1.0f;
    v[i1] += s1 * static_cast<float>(weight);
    v[i2] += s2 * static_cast<float>(weight);
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    add_feature(HashString64(tokens[i]), 1.0);
    if (i + 1 < tokens.size() && spec_.bigram_weight > 0) {
      add_feature(HashString64(tokens[i] + "_" + tokens[i + 1]), spec_.bigram_weight);
    }
  }

  // L2-normalize so L2 distance and cosine similarity agree in ranking.
  double norm2 = 0;
  for (float x : v) {
    norm2 += static_cast<double>(x) * x;
  }
  if (norm2 > 0) {
    float inv = static_cast<float>(1.0 / std::sqrt(norm2));
    for (float& x : v) {
      x *= inv;
    }
  }
  return v;
}

std::vector<Embedding> EmbeddingModel::EmbedBatch(const std::vector<std::string>& texts,
                                                  ThreadPool* pool) const {
  // Each text embeds independently into its own slot, so the shard layout
  // cannot change results — the batch is bit-equal to per-text Embed calls.
  std::vector<Embedding> out(texts.size());
  auto embed_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = Embed(texts[i]);
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && texts.size() > 1) {
    pool->ParallelFor(texts.size(), embed_range);
  } else {
    embed_range(0, texts.size());
  }
  return out;
}

EmbeddingCache::EmbeddingCache(const EmbeddingModel* model, size_t capacity)
    : model_(model), capacity_(capacity) {
  METIS_CHECK(model != nullptr);
  METIS_CHECK_GT(capacity, 0u);
}

const Embedding& EmbeddingCache::Insert(const std::string& text, Embedding value) {
  if (lru_.size() >= capacity_) {
    map_.erase(std::string_view(lru_.back().first));
    lru_.pop_back();
  }
  lru_.emplace_front(text, std::move(value));
  map_.emplace(std::string_view(lru_.front().first), lru_.begin());
  return lru_.front().second;
}

const Embedding& EmbeddingCache::Get(const std::string& text) {
  auto it = map_.find(std::string_view(text));
  if (it != map_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return lru_.front().second;
  }
  ++misses_;
  return Insert(text, model_->Embed(text));
}

std::vector<Embedding> EmbeddingCache::GetBatch(const std::vector<std::string>& texts,
                                                ThreadPool* pool) {
  std::vector<Embedding> out(texts.size());
  // Serve hits; collect unique misses in first-appearance order with the
  // output positions each one feeds.
  std::vector<std::string> miss_texts;
  std::vector<std::vector<size_t>> miss_positions;
  std::unordered_map<std::string_view, size_t> miss_index;  // Views into `texts`.
  for (size_t i = 0; i < texts.size(); ++i) {
    auto it = map_.find(std::string_view(texts[i]));
    if (it != map_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      out[i] = lru_.front().second;
      continue;
    }
    auto [mit, fresh] = miss_index.try_emplace(std::string_view(texts[i]), miss_texts.size());
    if (fresh) {
      miss_texts.push_back(texts[i]);
      miss_positions.emplace_back();
    }
    miss_positions[mit->second].push_back(i);
  }
  if (miss_texts.empty()) {
    return out;
  }
  std::vector<Embedding> computed = model_->EmbedBatch(miss_texts, pool);
  for (size_t m = 0; m < miss_texts.size(); ++m) {
    ++misses_;
    for (size_t pos : miss_positions[m]) {
      out[pos] = computed[m];
    }
    Insert(miss_texts[m], std::move(computed[m]));
  }
  return out;
}

float L2DistanceSquared(const Embedding& a, const Embedding& b) {
  METIS_CHECK_EQ(a.size(), b.size());
  double d = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = static_cast<double>(a[i]) - b[i];
    d += diff * diff;
  }
  return static_cast<float>(d);
}

float CosineSimilarity(const Embedding& a, const Embedding& b) {
  METIS_CHECK_EQ(a.size(), b.size());
  double dot = 0;
  double na = 0;
  double nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0 || nb == 0) {
    return 0;
  }
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

}  // namespace metis
