// Quickstart: serve one synthetic RAG workload with METIS and print per-query
// decisions next to a fixed-configuration vLLM baseline.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/runner/runner.h"

using namespace metis;

int main() {
  // 1) A workload: 40 Musique-style multihop questions arriving at 2 qps.
  RunSpec spec;
  spec.dataset = "musique";
  spec.num_queries = 40;
  spec.arrival_rate = 2.0;
  spec.seed = 7;

  // 2) Serve it with METIS: profile -> prune -> joint best-fit scheduling.
  spec.system = SystemKind::kMetis;
  RunMetrics metis = RunExperiment(spec);

  // 3) Same workload on vLLM with a static configuration.
  spec.system = SystemKind::kVllmFixed;
  spec.fixed_config = RagConfig{SynthesisMethod::kStuff, 10, 100};
  RunMetrics fixed = RunExperiment(spec);

  Table summary("quickstart: METIS vs fixed config (musique, 40 queries, 2 qps)");
  summary.SetHeader({"system", "mean F1", "mean delay (s)", "p90 delay (s)", "cost ($)"});
  for (const RunMetrics* m : {&metis, &fixed}) {
    summary.AddRow({m->label, Table::Num(m->mean_f1(), 3), Table::Num(m->mean_delay(), 2),
                    Table::Num(m->p90_delay(), 2), Table::Num(m->total_cost_usd(), 4)});
  }
  summary.Print();

  Table decisions("first 10 METIS per-query decisions");
  decisions.SetHeader({"query", "pieces", "joint", "complex", "chosen config", "F1",
                       "delay (s)"});
  for (size_t i = 0; i < metis.records.size() && i < 10; ++i) {
    const QueryRecord& r = metis.records[i];
    decisions.AddRow({StrFormat("q%d", r.query_id),
                      StrFormat("%d", r.profile.num_info_pieces),
                      r.profile.requires_joint ? "yes" : "no",
                      r.profile.high_complexity ? "high" : "low",
                      RagConfigToString(r.config), Table::Num(r.result.f1, 3),
                      Table::Num(r.e2e_delay, 2)});
  }
  decisions.Print();

  std::printf("\nMETIS profiler overhead: %.3f of end-to-end delay (mean)\n",
              metis.profiler_fracs.mean());
  return 0;
}
