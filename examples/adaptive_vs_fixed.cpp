// Adaptive vs fixed, end to end: runs the paper's full concurrent workload
// (all four datasets on one engine) under every serving policy in the repo and
// prints the quality/delay/cost landscape — a miniature of Figure 10 you can
// tweak: try different rates, pool sizes, or profiler models below.
//
//   ./build/examples/adaptive_vs_fixed

#include <cstdio>

#include "src/common/table.h"
#include "src/runner/runner.h"

using namespace metis;

int main() {
  MixedRunSpec spec;
  spec.queries_per_dataset = 80;
  spec.rate_per_dataset = 2.0;       // Try 0.5 (idle) or 4.0 (overload).
  spec.profiler_model = "gpt-4o";    // Try "llama3.1-70b-api".
  spec.seed = 5;

  struct Policy {
    const char* label;
    SystemKind kind;
    std::vector<RagConfig> fixed;
  };
  const Policy policies[] = {
      {"METIS", SystemKind::kMetis, {}},
      {"AdaptiveRAG*", SystemKind::kAdaptiveRag, {}},
      {"vLLM stuff(k=5)", SystemKind::kVllmFixed, {RagConfig{SynthesisMethod::kStuff, 5, 0}}},
      {"Parrot* stuff(k=5)", SystemKind::kParrotFixed,
       {RagConfig{SynthesisMethod::kStuff, 5, 0}}},
      {"vLLM map_reduce(k=10,L=100)", SystemKind::kVllmFixed,
       {RagConfig{SynthesisMethod::kMapReduce, 10, 100}}},
  };

  Table table("adaptive vs fixed: all four datasets concurrently, 2 qps each");
  table.SetHeader({"policy", "dataset", "mean F1", "mean delay (s)", "p90 (s)", "cost ($)"});
  for (const Policy& p : policies) {
    MixedRunSpec s = spec;
    s.system = p.kind;
    if (!p.fixed.empty()) {
      s.fixed_configs = p.fixed;
    }
    auto results = RunMixedExperiment(s);
    for (const RunMetrics& m : results) {
      table.AddRow({p.label, m.label.substr(m.label.find('/') + 1), Table::Num(m.mean_f1(), 3),
                    Table::Num(m.mean_delay(), 2), Table::Num(m.p90_delay(), 2),
                    Table::Num(m.total_cost_usd(), 4)});
    }
  }
  table.Print();
  std::printf("\nNote: fixed configs are one-size-fits-all; METIS adapts the synthesis method,\n"
              "chunk count, and intermediate length per query against live GPU memory.\n");
  return 0;
}
