// Finance assistant: the paper's motivating scenario (§1, §4.2) — questions
// over quarterly financial reports, from simple lookups ("who is the CEO") to
// cross-quarter comparisons and why-style analyses. Shows how METIS profiles
// each question and picks a different configuration per query, and what that
// buys under a bursty workload.
//
//   ./build/examples/finance_assistant

#include <cstdio>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/mapping.h"
#include "src/runner/runner.h"

using namespace metis;

int main() {
  // The KG-RAG-FinSec-style corpus: 1024-token chunks of quarterly reports.
  auto dataset = GetOrGenerateDataset("kg_rag_finsec", 120, "cohere-embed-v3-sim", 21);
  std::printf("corpus: %zu chunks x %d tokens | metadata: \"%s\"\n\n",
              dataset->db().num_chunks(), dataset->profile().chunk_tokens,
              dataset->db().metadata().description.c_str());

  // 1) What the profiler + Algorithm 1 decide for three archetypal questions.
  Simulator sim;
  ApiLlmClient api(&sim, Gpt4oApi(), 21);
  QueryProfiler profiler(&sim, &api, &dataset->db().metadata(), Gpt4oProfilerParams(), 21);

  Table plan("per-question pruned configuration spaces (Algorithm 1)");
  plan.SetHeader({"question flavor", "joint", "complex", "pieces", "methods", "chunks",
                  "intermediates"});
  int shown = 0;
  for (const RagQuery& q : dataset->queries()) {
    bool simple = !q.requires_joint && !q.high_complexity;
    bool compare = q.requires_joint && !q.high_complexity;
    bool why = q.requires_joint && q.high_complexity;
    if ((shown == 0 && !simple) || (shown == 1 && !compare) || (shown == 2 && !why)) {
      continue;
    }
    QueryProfiler::Outcome out = profiler.Estimate(q);
    PrunedConfigSpace space = RuleBasedMapping(out.profile);
    std::string methods;
    for (SynthesisMethod m : space.methods) {
      methods += std::string(methods.empty() ? "" : "+") + SynthesisMethodName(m);
    }
    const char* flavor[] = {"lookup (\"what is ...\")", "comparison (\"compare ...\")",
                            "analysis (\"when and why ...\")"};
    plan.AddRow({flavor[shown], out.profile.requires_joint ? "yes" : "no",
                 out.profile.high_complexity ? "high" : "low",
                 StrFormat("%d", out.profile.num_info_pieces), methods,
                 StrFormat("[%d, %d]", space.min_chunks, space.max_chunks),
                 StrFormat("[%d, %d]", space.min_intermediate, space.max_intermediate)});
    if (++shown == 3) {
      break;
    }
  }
  plan.Print();

  // 2) Serve the workload with METIS vs the best static configuration.
  RunSpec spec;
  spec.dataset = "kg_rag_finsec";
  spec.num_queries = 120;
  spec.arrival_rate = 1.5;
  spec.seed = 21;
  spec.system = SystemKind::kMetis;
  RunMetrics metis = RunExperiment(spec);
  spec.system = SystemKind::kVllmFixed;
  spec.fixed_config = RagConfig{SynthesisMethod::kMapReduce, 10, 100};
  RunMetrics fixed = RunExperiment(spec);

  Table served("finance workload: METIS vs static map_reduce(k=10,L=100)");
  served.SetHeader({"system", "mean F1", "mean delay (s)", "p90 (s)", "cost ($)"});
  served.AddRow({"METIS", Table::Num(metis.mean_f1(), 3), Table::Num(metis.mean_delay(), 2),
                 Table::Num(metis.p90_delay(), 2), Table::Num(metis.total_cost_usd(), 4)});
  served.AddRow({"vLLM fixed", Table::Num(fixed.mean_f1(), 3), Table::Num(fixed.mean_delay(), 2),
                 Table::Num(fixed.p90_delay(), 2), Table::Num(fixed.total_cost_usd(), 4)});
  served.Print();

  // 3) The configuration mix METIS actually used.
  int rerank = 0, stuff = 0, reduce = 0;
  for (const QueryRecord& r : metis.records) {
    rerank += r.config.method == SynthesisMethod::kMapRerank;
    stuff += r.config.method == SynthesisMethod::kStuff;
    reduce += r.config.method == SynthesisMethod::kMapReduce;
  }
  std::printf("\nMETIS config mix over %zu queries: map_rerank=%d stuff=%d map_reduce=%d\n",
              metis.records.size(), rerank, stuff, reduce);
  return 0;
}
