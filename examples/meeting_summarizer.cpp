// Meeting summarizer: a QMSUM-style workload ("summarize the discussion of X,
// including why each decision was made"). Demonstrates the intermediate-length
// knob: these queries live or die by how much of each transcript chunk the map
// stage preserves, and METIS sizes that budget from the query profile.
//
//   ./build/examples/meeting_summarizer

#include <cstdio>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/runner/runner.h"

using namespace metis;

int main() {
  auto dataset = GetOrGenerateDataset("qmsum", 100, "cohere-embed-v3-sim", 31);

  // Pick a complex summarization query and show the L-knob tradeoff on it.
  const RagQuery* query = nullptr;
  for (const RagQuery& q : dataset->queries()) {
    if (q.requires_joint && q.high_complexity && q.num_facts >= 6) {
      query = &q;
      break;
    }
  }
  std::printf("query: \"%s\"\n  needs %d facts across the transcript, gold answer %zu tokens\n\n",
              query->text.c_str(), query->num_facts, query->gold_answer_tokens.size());

  Table sweep("intermediate_length sweep on this query (map_reduce, k = 12)");
  sweep.SetHeader({"L (tokens)", "F1", "delay (s)", "verdict"});
  for (int len : {10, 30, 60, 100, 160, 220}) {
    RagResult r = RunSingleQuery(*dataset, *query, RagConfig{SynthesisMethod::kMapReduce, 12, len},
                                 "mistral-7b-v3-awq", 31);
    const char* verdict = len <= 30 ? "summaries too terse: facts dropped"
                          : len <= 100 ? "sweet spot"
                                       : "no quality left to buy, delay keeps rising";
    sweep.AddRow({StrFormat("%d", len), Table::Num(r.f1, 3), Table::Num(r.exec_delay(), 2),
                  verdict});
  }
  sweep.Print();

  // Serve the full meeting-QA workload with METIS.
  RunSpec spec;
  spec.dataset = "qmsum";
  spec.num_queries = 100;
  spec.arrival_rate = 1.5;
  spec.seed = 31;
  spec.system = SystemKind::kMetis;
  RunMetrics metis = RunExperiment(spec);

  Samples chosen_l;
  for (const QueryRecord& r : metis.records) {
    if (r.config.method == SynthesisMethod::kMapReduce) {
      chosen_l.Add(r.config.intermediate_tokens);
    }
  }
  std::printf("\nMETIS on the full workload: F1 %.3f, mean delay %.2fs\n", metis.mean_f1(),
              metis.mean_delay());
  if (!chosen_l.empty()) {
    std::printf("chosen intermediate lengths: median %.0f, p90 %.0f (adapted per query)\n",
                chosen_l.median(), chosen_l.p90());
  }
  return 0;
}
